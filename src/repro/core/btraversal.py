"""bTraversal: the baseline reverse-search framework (Algorithm 1).

bTraversal is the direct instantiation of the Cohen–Kimelfeld–Sagiv reverse
search for hereditary properties: start from an arbitrary maximal k-biplex
and repeatedly apply the ThreeStep procedure, growing almost-satisfying
graphs with vertices from *both* sides and keeping every link of the
(strongly connected) solution graph.  It is correct but its solution graph
is dense, which is exactly what iTraversal improves on.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..graph.bipartite import BipartiteGraph
from .biplex import Biplex
from .enum_almost_sat import DEFAULT_CONFIG, EnumAlmostSatConfig
from .traversal import ReverseSearchEngine, TraversalConfig, TraversalStats


def btraversal_config(
    enum_config: EnumAlmostSatConfig = DEFAULT_CONFIG,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
    output_order: str = "pre",
    local_enumeration: str = "refined",
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    prep: Optional[str] = None,
) -> TraversalConfig:
    """The :class:`TraversalConfig` corresponding to bTraversal.

    ``local_enumeration="inflation"`` reproduces the paper's Figure 7
    baseline, whose EnumAlmostSat is implemented by inflating each
    almost-satisfying graph and enumerating local maximal (k+1)-plexes;
    ``"refined"`` (default) uses the same Section 4 implementation as
    iTraversal, which is the "fair comparison" setting of Figure 11.
    ``backend=None`` resolves to
    :func:`repro.graph.protocol.default_backend` (``bitset`` unless the
    ``REPRO_BACKEND`` environment variable says otherwise); ``jobs=None``
    resolves via ``REPRO_JOBS`` (default 1 = serial).  Note that without
    the exclusion strategy bTraversal's parallel shards overlap heavily —
    the run stays correct (the coordinator deduplicates) but the
    duplicated traversal work limits the speedup (see
    :mod:`repro.parallel`).  ``prep=None`` resolves via ``REPRO_PREP``
    (default ``"core"``, a no-op here since bTraversal runs without size
    thresholds — only ``"core+order"`` changes its traversal order);
    ``"off"`` pins raw canonical order.
    """
    from ..graph.protocol import default_backend
    from ..prep import resolve_prep

    if backend is None:
        backend = default_backend()
    return TraversalConfig(
        prep=resolve_prep(prep),
        left_anchored=False,
        right_shrinking=False,
        exclusion=False,
        enum_config=enum_config,
        initial_solution="arbitrary",
        max_results=max_results,
        time_limit=time_limit,
        output_order=output_order,
        local_enumeration=local_enumeration,
        backend=backend,
        jobs=jobs,
    )


class BTraversal:
    """Enumerate maximal k-biplexes with the baseline bTraversal algorithm.

    Examples
    --------
    >>> from repro.graph import paper_example_graph
    >>> algorithm = BTraversal(paper_example_graph(), k=1)
    >>> solutions = algorithm.enumerate()
    >>> all(len(s.left) + len(s.right) > 0 for s in solutions)
    True
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        k: int,
        enum_config: EnumAlmostSatConfig = DEFAULT_CONFIG,
        max_results: Optional[int] = None,
        time_limit: Optional[float] = None,
        output_order: str = "pre",
        local_enumeration: str = "refined",
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        prep: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self._engine = ReverseSearchEngine(
            graph,
            k,
            btraversal_config(
                enum_config=enum_config,
                max_results=max_results,
                time_limit=time_limit,
                output_order=output_order,
                local_enumeration=local_enumeration,
                backend=backend,
                jobs=jobs,
                prep=prep,
            ),
        )

    def run(self) -> Iterator[Biplex]:
        """Lazily yield maximal k-biplexes (a fresh one-shot session per call)."""
        return self._engine.run()

    def session(self):
        """A fresh pausable :class:`~repro.core.session.EnumerationSession`.

        Shares this instance's engine; see
        :meth:`repro.core.itraversal.ITraversal.session` for the liveness
        contract.
        """
        from .session import EnumerationSession

        return EnumerationSession.from_engine(self._engine)

    def enumerate(self) -> List[Biplex]:
        """Enumerate all maximal k-biplexes (subject to any configured limits)."""
        return self._engine.enumerate()

    @property
    def stats(self) -> TraversalStats:
        """Counters of the last run."""
        return self._engine.stats

    @property
    def prep(self):
        """The :class:`~repro.prep.PrepPlan` the engine runs on."""
        return self._engine.prep_plan


def enumerate_mbps_btraversal(
    graph: BipartiteGraph,
    k: int,
    max_results: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> Tuple[List[Biplex], TraversalStats]:
    """Functional convenience wrapper around :class:`BTraversal`."""
    algorithm = BTraversal(graph, k, max_results=max_results, time_limit=time_limit)
    solutions = algorithm.enumerate()
    return solutions, algorithm.stats
