"""Command-line interface.

Three subcommands cover the library's day-to-day uses:

* ``repro-mbp enumerate``  — enumerate maximal k-biplexes of an edge-list
  file (or a registry dataset) and print or save them;
* ``repro-mbp experiment`` — run one of the per-figure experiment drivers
  and print the paper-style table;
* ``repro-mbp datasets``   — list the dataset registry (the Table 1 stand-ins).

``enumerate`` accepts ``--backend {bitset,set,packed}`` to pick the
adjacency substrate; ``bitset`` (word-parallel bitmasks) is the default,
``set`` is the plain-set fallback and ``packed`` adds ``uint64`` bit-matrix
rows — numpy-vectorized when numpy >= 2.0 is installed, an ``array('Q')``
fallback with identical results otherwise.  All backends enumerate
identical solution sets.  The ``REPRO_BACKEND`` environment variable
overrides the default globally.  ``--jobs N`` (or ``REPRO_JOBS=N``) runs
the enumeration on the sharded parallel engine (:mod:`repro.parallel`)
with ``N`` worker processes — the same solution set for uncapped runs
(a ``--max-results`` cap keeps the first N unique arrivals, which may
differ from serial's first N), one merged stats line.  ``--prep
{off,core,core+order}`` (or ``REPRO_PREP``) selects the preprocessing
pipeline (:mod:`repro.prep`): ``core`` (default) shrinks the graph with
the threshold-driven core/bitruss reduction before enumerating — a no-op
without ``--theta`` — and ``core+order`` additionally anchors the
traversal in degeneracy order; the summary line reports how many
vertices/edges the reduction removed.

Run ``repro-mbp <subcommand> --help`` for the full option list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.datasets import ALL_DATASETS, load_dataset, table1_rows
from .bench.experiments import EXPERIMENTS
from .bench.reporting import format_table
from .core.itraversal import ITraversal
from .core.verify import summarize_solutions
from .graph.io import read_edge_list
from .graph.packed import PackedBackendUnavailable
from .graph.protocol import BACKENDS, default_backend
from .parallel import resolve_jobs
from .prep import resolve_prep


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mbp",
        description="Maximal k-biplex enumeration (SIGMOD 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="enumerate maximal k-biplexes of a graph"
    )
    source = enumerate_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="edge-list file (see repro.graph.io)")
    source.add_argument("--dataset", choices=ALL_DATASETS, help="registry dataset name")
    enumerate_parser.add_argument("-k", type=int, default=1, help="biplex parameter (default 1)")
    enumerate_parser.add_argument(
        "--variant",
        default="full",
        choices=("full", "no-exclusion", "left-anchored-only"),
        help="iTraversal variant",
    )
    enumerate_parser.add_argument(
        "--backend",
        default=None,
        choices=BACKENDS,
        help=(
            "adjacency substrate: 'bitset' (word-parallel bitmasks, the default), "
            "'packed' (uint64 bit-matrix rows; vectorized with numpy >= 2.0, "
            "numpy-free array('Q') fallback otherwise) or 'set' (plain "
            "adjacency sets); all enumerate identical solution sets, and the "
            "REPRO_BACKEND environment variable overrides the default"
        ),
    )
    enumerate_parser.add_argument("--theta", type=int, default=0, help="min size of both sides")
    enumerate_parser.add_argument("--max-results", type=int, default=None)
    enumerate_parser.add_argument("--time-limit", type=float, default=None, help="seconds")
    enumerate_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the sharded parallel engine (default: the "
            "REPRO_JOBS environment variable, falling back to 1 = serial; "
            "0 = one worker per CPU core).  Uncapped runs enumerate exactly "
            "the serial solution set; with --max-results the cap keeps the "
            "first N unique solutions to *arrive*, which may differ from "
            "the serial run's first N"
        ),
    )
    enumerate_parser.add_argument(
        "--prep",
        default=None,
        help=(
            "preprocessing pipeline: 'core' (threshold-driven core/bitruss "
            "graph reduction, the default — a no-op without --theta), "
            "'core+order' (reduction plus degeneracy anchor ordering) or "
            "'off' (raw graph, canonical order).  All modes enumerate "
            "identical solution sets, reported in the input graph's vertex "
            "ids; the REPRO_PREP environment variable overrides the default"
        ),
    )
    enumerate_parser.add_argument(
        "--quiet", action="store_true", help="print only the summary, not the biplexes"
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")

    subparsers.add_parser("datasets", help="list the dataset registry (Table 1 stand-ins)")
    return parser


def _command_enumerate(args: argparse.Namespace) -> int:
    # Resolved here (not at parser-build time) so an invalid REPRO_BACKEND
    # only affects the subcommand that uses it, with a clean error message.
    # `--prep` deliberately has no argparse `choices`: resolving it here
    # funnels both the flag and the REPRO_PREP environment variable through
    # the same validation and error message.
    try:
        backend = args.backend if args.backend is not None else default_backend()
        jobs = resolve_jobs(args.jobs)
        prep = resolve_prep(args.prep)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.dataset:
        graph = load_dataset(args.dataset)
    else:
        graph = read_edge_list(args.input)
    try:
        algorithm = ITraversal(
            graph,
            args.k,
            variant=args.variant,
            theta_left=args.theta,
            theta_right=args.theta,
            max_results=args.max_results,
            time_limit=args.time_limit,
            backend=backend,
            jobs=jobs,
            prep=prep,
        )
    except PackedBackendUnavailable as error:
        # Defensive: conversions auto-select the array('Q') fallback when
        # numpy is absent, so only a direct construction of the numpy
        # classes can land here; other RuntimeErrors are real bugs and keep
        # their traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    solutions = algorithm.enumerate()
    if not args.quiet:
        for solution in solutions:
            left = ",".join(str(v) for v in sorted(solution.left))
            right = ",".join(str(u) for u in sorted(solution.right))
            print(f"L: [{left}]  R: [{right}]")
    summary = summarize_solutions(solutions)
    stats = algorithm.stats
    plan = algorithm.prep
    print(
        f"# solutions={summary['count']} max_left={summary['max_left']} "
        f"max_right={summary['max_right']} links={stats.num_links} "
        f"elapsed={stats.elapsed_seconds:.3f}s truncated={stats.truncated}"
    )
    print(
        f"# prep={plan.mode} removed_left={plan.removed_left} "
        f"removed_right={plan.removed_right} removed_edges={plan.removed_edges}"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    try:
        rows = driver()
    except PackedBackendUnavailable as error:
        # Defensive, as in `enumerate`: the packed conversions degrade to
        # the fallback on their own; any other RuntimeError keeps its
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    print(format_table(table1_rows(), title="Dataset registry (Table 1 stand-ins)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-mbp`` console script."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "enumerate":
        return _command_enumerate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "datasets":
        return _command_datasets(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
