"""Command-line interface.

Five subcommands cover the library's day-to-day uses:

* ``repro-mbp enumerate``  — enumerate maximal k-biplexes of an edge-list
  file (or a registry dataset) and print or save them (``--json`` emits
  the machine-readable status block shared with the service);
* ``repro-mbp query``      — the service front end: run a paginated query
  against a running daemon (``--server``) or an in-process service,
  inspect daemon statistics, cancel sessions;
* ``repro-mbp serve``      — run the HTTP/JSON daemon (same flags as
  ``python -m repro.serve``);
* ``repro-mbp experiment`` — run one of the per-figure experiment drivers
  and print the paper-style table;
* ``repro-mbp datasets``   — list the dataset registry (the Table 1 stand-ins).

``enumerate`` accepts ``--backend {bitset,set,packed}`` to pick the
adjacency substrate; ``bitset`` (word-parallel bitmasks) is the default,
``set`` is the plain-set fallback and ``packed`` adds ``uint64`` bit-matrix
rows — numpy-vectorized when numpy >= 2.0 is installed, an ``array('Q')``
fallback with identical results otherwise.  All backends enumerate
identical solution sets.  The ``REPRO_BACKEND`` environment variable
overrides the default globally.  ``--jobs N`` (or ``REPRO_JOBS=N``) runs
the enumeration on the sharded parallel engine (:mod:`repro.parallel`)
with ``N`` worker processes — the same solution set for uncapped runs
(a ``--max-results`` cap keeps the first N unique arrivals, which may
differ from serial's first N), one merged stats line.  ``--prep
{off,core,core+order}`` (or ``REPRO_PREP``) selects the preprocessing
pipeline (:mod:`repro.prep`): ``core`` (default) shrinks the graph with
the threshold-driven core/bitruss reduction before enumerating — a no-op
without ``--theta`` — and ``core+order`` additionally anchors the
traversal in degeneracy order; the summary line reports how many
vertices/edges the reduction removed.

Run ``repro-mbp <subcommand> --help`` for the full option list.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from typing import List, Optional, Sequence

from .analysis.datasets import ALL_DATASETS, load_dataset, table1_rows
from .bench.experiments import EXPERIMENTS
from .bench.reporting import format_table
from .core.itraversal import ITraversal
from .core.objective import resolve_objective
from .core.verify import summarize_solutions
from .graph.io import read_edge_list
from .graph.packed import PackedBackendUnavailable
from .graph.protocol import BACKENDS, default_backend
from .parallel import resolve_jobs
from .prep import resolve_prep


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mbp",
        description="Maximal k-biplex enumeration (SIGMOD 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="enumerate maximal k-biplexes of a graph"
    )
    source = enumerate_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="edge-list file (see repro.graph.io)")
    source.add_argument("--dataset", choices=ALL_DATASETS, help="registry dataset name")
    enumerate_parser.add_argument("-k", type=int, default=1, help="biplex parameter (default 1)")
    enumerate_parser.add_argument(
        "--variant",
        default="full",
        choices=("full", "no-exclusion", "left-anchored-only"),
        help="iTraversal variant",
    )
    enumerate_parser.add_argument(
        "--backend",
        default=None,
        choices=BACKENDS,
        help=(
            "adjacency substrate: 'bitset' (word-parallel bitmasks, the default), "
            "'packed' (uint64 bit-matrix rows; vectorized with numpy >= 2.0, "
            "numpy-free array('Q') fallback otherwise) or 'set' (plain "
            "adjacency sets); all enumerate identical solution sets, and the "
            "REPRO_BACKEND environment variable overrides the default"
        ),
    )
    enumerate_parser.add_argument("--theta", type=int, default=0, help="min size of both sides")
    enumerate_parser.add_argument(
        "--mode",
        default=None,
        help=(
            "solver objective: 'enumerate' (default — every maximal "
            "k-biplex), 'maximum' (the single largest, ties broken by "
            "canonical order) or 'top-k' with --top N (the N largest by "
            "size).  The solver modes use the incumbent size as an extra "
            "pruning bound"
        ),
    )
    enumerate_parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="how many solutions to keep in --mode top-k",
    )
    enumerate_parser.add_argument("--max-results", type=int, default=None)
    enumerate_parser.add_argument("--time-limit", type=float, default=None, help="seconds")
    enumerate_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the sharded parallel engine (default: the "
            "REPRO_JOBS environment variable, falling back to 1 = serial; "
            "0 = one worker per CPU core).  Uncapped runs enumerate exactly "
            "the serial solution set; with --max-results the cap keeps the "
            "first N unique solutions to *arrive*, which may differ from "
            "the serial run's first N"
        ),
    )
    enumerate_parser.add_argument(
        "--prep",
        default=None,
        help=(
            "preprocessing pipeline: 'core' (threshold-driven core/bitruss "
            "graph reduction, the default — a no-op without --theta), "
            "'core+order' (reduction plus degeneracy anchor ordering) or "
            "'off' (raw graph, canonical order).  All modes enumerate "
            "identical solution sets, reported in the input graph's vertex "
            "ids; the REPRO_PREP environment variable overrides the default"
        ),
    )
    enumerate_parser.add_argument(
        "--quiet", action="store_true", help="print only the summary, not the biplexes"
    )
    enumerate_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit one JSON document (solutions + the full status block: "
            "traversal counters, truncation flags, shard count, prep "
            "reduction sizes) instead of text — the same block the query "
            "service returns"
        ),
    )
    enumerate_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record a phase trace (load → plan → traverse → serialize, "
            "plus per-shard worker spans under --jobs) and include it in "
            "the --json document; a no-op when REPRO_OBS is off"
        ),
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")

    subparsers.add_parser("datasets", help="list the dataset registry (Table 1 stand-ins)")

    query_parser = subparsers.add_parser(
        "query", help="query the enumeration service (daemon or in-process)"
    )
    query_sub = query_parser.add_subparsers(dest="query_command", required=True)

    run_parser = query_sub.add_parser(
        "run", help="run one enumeration query, paginating through the service"
    )
    run_source = run_parser.add_mutually_exclusive_group(required=True)
    run_source.add_argument("--input", help="edge-list file (see repro.graph.io)")
    run_source.add_argument("--dataset", choices=ALL_DATASETS, help="registry dataset name")
    run_parser.add_argument("-k", type=int, default=1, help="biplex parameter (default 1)")
    run_parser.add_argument(
        "--variant",
        default="full",
        choices=("full", "no-exclusion", "left-anchored-only"),
        help="iTraversal variant",
    )
    run_parser.add_argument("--backend", default=None, choices=BACKENDS)
    run_parser.add_argument("--theta", type=int, default=0, help="min size of both sides")
    run_parser.add_argument("--prep", default=None, help="preprocessing mode (see enumerate --help)")
    run_parser.add_argument(
        "--order",
        default=None,
        help="candidate ordering for core+order prep: degeneracy, degree, gamma or auto",
    )
    run_parser.add_argument("--jobs", type=int, default=None)
    run_parser.add_argument(
        "--mode",
        default=None,
        help="solver objective: enumerate (default), maximum, or top-k with --top N",
    )
    run_parser.add_argument(
        "--top", type=int, default=None, metavar="N", help="how many solutions for --mode top-k"
    )
    run_parser.add_argument("--max-results", type=int, default=None)
    run_parser.add_argument("--time-limit", type=float, default=None, help="seconds")
    run_parser.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="paginate in pages of this size (default: one unpaginated request)",
    )
    run_parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help=(
            "base URL of a running daemon (e.g. http://127.0.0.1:8732); "
            "omitted = run against an in-process service"
        ),
    )
    run_parser.add_argument(
        "--format",
        default="table",
        choices=("table", "csv", "json"),
        help="output format (default table)",
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "request a phase trace from the service and include it in "
            "--format json output; a no-op when the service's REPRO_OBS "
            "is off"
        ),
    )

    status_parser = query_sub.add_parser("status", help="print daemon statistics")
    status_parser.add_argument("--server", required=True, metavar="URL")

    stats_parser = query_sub.add_parser(
        "stats", help="scrape a daemon's /v1/metrics snapshot"
    )
    stats_parser.add_argument("--server", required=True, metavar="URL")
    stats_parser.add_argument(
        "--format",
        default="json",
        choices=("json", "text"),
        help="snapshot rendering (default json; text = one series per line)",
    )
    stats_parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-scrape every SECONDS until interrupted",
    )

    cancel_parser = query_sub.add_parser("cancel", help="cancel a live daemon session")
    cancel_parser.add_argument("session_id")
    cancel_parser.add_argument("--server", required=True, metavar="URL")

    update_parser = query_sub.add_parser(
        "update", help="apply an edge insert/delete batch to a daemon's hot graph"
    )
    update_source = update_parser.add_mutually_exclusive_group(required=True)
    update_source.add_argument("--input", help="edge-list file (see repro.graph.io)")
    update_source.add_argument(
        "--dataset", choices=ALL_DATASETS, help="registry dataset name"
    )
    update_parser.add_argument("--server", required=True, metavar="URL")
    update_parser.add_argument(
        "--insert",
        action="append",
        default=[],
        metavar="L:R",
        help="edge to insert, as left:right vertex ids (repeatable)",
    )
    update_parser.add_argument(
        "--delete",
        action="append",
        default=[],
        metavar="L:R",
        help="edge to delete, as left:right vertex ids (repeatable)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP/JSON query daemon (same flags as python -m repro.serve)"
    )
    from .serve import build_arg_parser as _build_serve_args

    _build_serve_args(serve_parser)
    return parser


def _command_enumerate(args: argparse.Namespace) -> int:
    # Resolved here (not at parser-build time) so an invalid REPRO_BACKEND
    # only affects the subcommand that uses it, with a clean error message.
    # `--prep` deliberately has no argparse `choices`: resolving it here
    # funnels both the flag and the REPRO_PREP environment variable through
    # the same validation and error message.  `--mode` / `--top` follow the
    # same pattern via resolve_objective, shared with the query service.
    try:
        backend = args.backend if args.backend is not None else default_backend()
        jobs = resolve_jobs(args.jobs)
        prep = resolve_prep(args.prep)
        mode, top = resolve_objective(args.mode, args.top)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from .obs import PRUNE_SITE_FIELDS, get_registry
    from .obs import span as obs_span
    from .obs import trace as obs_trace

    obs = get_registry()
    with obs_trace("cli.enumerate", enabled=args.trace and obs.enabled) as active:
        with obs_span("load"):
            if args.dataset:
                graph = load_dataset(args.dataset)
            else:
                graph = read_edge_list(args.input)
        try:
            with obs_span("plan"):
                algorithm = ITraversal(
                    graph,
                    args.k,
                    variant=args.variant,
                    theta_left=args.theta,
                    theta_right=args.theta,
                    max_results=args.max_results,
                    time_limit=args.time_limit,
                    backend=backend,
                    jobs=jobs,
                    prep=prep,
                    mode=mode,
                    top=top,
                )
        except PackedBackendUnavailable as error:
            # Defensive: conversions auto-select the array('Q') fallback when
            # numpy is absent, so only a direct construction of the numpy
            # classes can land here; other RuntimeErrors are real bugs and keep
            # their traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2
        with obs_span("traverse"):
            solutions = algorithm.enumerate()
    stats = algorithm.stats
    plan = algorithm.prep
    if args.json:
        from .service.status import status_block

        document = {
            "solutions": [
                [sorted(solution.left), sorted(solution.right)] for solution in solutions
            ],
            "num_solutions": len(solutions),
            "status": status_block(
                stats,
                plan,
                mode=mode,
                obs={
                    "enabled": obs.enabled,
                    "pruned_by_site": {
                        site: getattr(stats, field_name, 0)
                        for site, field_name in PRUNE_SITE_FIELDS
                    },
                },
            ),
        }
        if active is not None:
            document["trace"] = active.to_dict()
        if args.quiet:
            document.pop("solutions")
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if not args.quiet:
        for solution in solutions:
            left = ",".join(str(v) for v in sorted(solution.left))
            right = ",".join(str(u) for u in sorted(solution.right))
            print(f"L: [{left}]  R: [{right}]")
    summary = summarize_solutions(solutions)
    print(
        f"# solutions={summary['count']} max_left={summary['max_left']} "
        f"max_right={summary['max_right']} links={stats.num_links} "
        f"elapsed={stats.elapsed_seconds:.3f}s truncated={stats.truncated}"
    )
    if mode != "enumerate":
        print(
            f"# mode={mode} best_size={stats.best_size} "
            f"pruned_by_bound={stats.num_pruned_by_bound}"
        )
    print(
        f"# prep={plan.mode} removed_left={plan.removed_left} "
        f"removed_right={plan.removed_right} removed_edges={plan.removed_edges}"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    try:
        rows = driver()
    except PackedBackendUnavailable as error:
        # Defensive, as in `enumerate`: the packed conversions degrade to
        # the fallback on their own; any other RuntimeError keeps its
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    print(format_table(table1_rows(), title="Dataset registry (Table 1 stand-ins)"))
    return 0


# --------------------------------------------------------------------- #
# The service front end: `query run` / `query status` / `query cancel`.
# --------------------------------------------------------------------- #
def _server_request(server: str, method: str, path: str, payload=None) -> dict:
    """One JSON round trip to a daemon; raises RuntimeError on HTTP errors."""
    import urllib.error
    import urllib.request

    url = server.rstrip("/") + path
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            message = json.loads(error.read()).get("error", str(error))
        except Exception:
            message = str(error)
        raise RuntimeError(f"server error ({error.code}): {message}") from None
    except urllib.error.URLError as error:
        raise RuntimeError(f"cannot reach server {server}: {error.reason}") from None


def _query_document(args: argparse.Namespace) -> dict:
    if args.dataset:
        graph_spec = {"dataset": args.dataset}
    else:
        graph_spec = {"path": args.input}
    return {
        "graph": graph_spec,
        "k": args.k,
        "variant": args.variant,
        "theta_left": args.theta,
        "theta_right": args.theta,
        "backend": args.backend,
        "prep": args.prep,
        "order_strategy": args.order,
        "jobs": args.jobs,
        "max_results": args.max_results,
        "time_limit": args.time_limit,
        "mode": args.mode,
        "top": args.top,
    }


def _run_query(args: argparse.Namespace, query: dict):
    """Run the query, paginating when asked.

    Returns ``(solutions, status, trace)`` — ``trace`` is the last
    response's trace block (``None`` unless ``--trace`` was honoured).
    """
    want_trace = bool(getattr(args, "trace", False))
    if args.server is not None:
        if args.page_size is None:
            response = _server_request(
                args.server,
                "POST",
                "/v1/enumerate",
                {"query": query, "trace": want_trace},
            )
            return response["solutions"], response["status"], response.get("trace")
        response = _server_request(
            args.server,
            "POST",
            "/v1/enumerate",
            {
                "query": query,
                "paginate": True,
                "page_size": args.page_size,
                "trace": want_trace,
            },
        )
        solutions = list(response["solutions"])
        while not response["exhausted"]:
            response = _server_request(
                args.server,
                "POST",
                "/v1/paginate",
                {
                    "session_id": response["session_id"],
                    "cursor": response["cursor"],
                    "page_size": args.page_size,
                    "trace": want_trace,
                },
            )
            solutions.extend(response["solutions"])
        return solutions, response["status"], response.get("trace")

    from .service import Budgets, QueryService

    service = QueryService(budgets=Budgets(max_page_size=10**9))
    if want_trace:
        query = {**query, "trace": True}
    if args.page_size is None:
        response = service.enumerate(query)
        return response["solutions"], response["status"], response.get("trace")
    response = service.open_session(query, page_size=args.page_size)
    solutions = list(response["solutions"])
    while not response["exhausted"]:
        response = service.next_page(
            session_id=response["session_id"],
            cursor=response["cursor"],
            page_size=args.page_size,
            want_trace=want_trace,
        )
        solutions.extend(response["solutions"])
    return solutions, response["status"], response.get("trace")


def _print_solutions(solutions, status, fmt: str, trace_block=None) -> None:
    if fmt == "json":
        document = {
            "solutions": solutions,
            "num_solutions": len(solutions),
            "status": status,
        }
        if trace_block is not None:
            document["trace"] = trace_block
        print(json.dumps(document, indent=2, sort_keys=True))
        return
    if fmt == "csv":
        writer = csv.writer(sys.stdout)
        writer.writerow(["left", "right"])
        for left, right in solutions:
            writer.writerow(
                [" ".join(map(str, left)), " ".join(map(str, right))]
            )
        return
    for left, right in solutions:
        left_text = ",".join(map(str, left))
        right_text = ",".join(map(str, right))
        print(f"L: [{left_text}]  R: [{right_text}]")
    prep = status.get("prep") or {}
    print(
        f"# solutions={len(solutions)} links={status['num_links']} "
        f"elapsed={status['elapsed_seconds']:.3f}s truncated={status['truncated']}"
    )
    mode = status.get("mode")
    if mode and mode != "enumerate":
        print(
            f"# mode={mode} best_size={status.get('best_size')} "
            f"pruned_by_bound={status.get('num_pruned_by_bound')}"
        )
    if prep:
        print(
            f"# prep={prep['mode']} order={prep['order_strategy']} "
            f"removed_left={prep['removed_left']} removed_right={prep['removed_right']} "
            f"removed_edges={prep['removed_edges']}"
        )


def _command_query_stats(args: argparse.Namespace) -> int:
    """Scrape ``/v1/metrics`` once, or repeatedly under ``--watch``.

    Both ways a watch loop normally ends — Ctrl-C, or the downstream pager
    closing the pipe (``... --watch 1 | head``) — are clean exits (code 0,
    no traceback), not errors.
    """
    import time as time_module

    from .obs import render_snapshot_text

    try:
        while True:
            snapshot = _server_request(args.server, "GET", "/v1/metrics")
            if args.format == "text":
                sys.stdout.write(render_snapshot_text(snapshot))
                sys.stdout.flush()
            else:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            if args.watch is None:
                return 0
            time_module.sleep(max(args.watch, 0.05))
            print(f"--- {time_module.strftime('%H:%M:%S')} ---")
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        import errno

        if not isinstance(error, BrokenPipeError) and error.errno != errno.EPIPE:
            raise
        # Point stdout at devnull so the interpreter's exit-time flush of
        # the dead pipe cannot raise a second time.  Skipped when stdout has
        # no real descriptor (captured/redirected streams).
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, AttributeError):
            pass
        return 0


def _parse_edge_flag(text: str) -> List[int]:
    left_text, sep, right_text = text.partition(":")
    try:
        if not sep:
            raise ValueError
        return [int(left_text), int(right_text)]
    except ValueError:
        raise ValueError(
            f"edge {text!r} is not of the form L:R (two integer vertex ids)"
        ) from None


def _command_query_update(args: argparse.Namespace) -> int:
    if args.dataset:
        graph_spec = {"dataset": args.dataset}
    else:
        graph_spec = {"path": args.input}
    document = {
        "graph": graph_spec,
        "insert": [_parse_edge_flag(text) for text in args.insert],
        "delete": [_parse_edge_flag(text) for text in args.delete],
    }
    response = _server_request(args.server, "POST", "/v1/update", document)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _command_query(args: argparse.Namespace) -> int:
    try:
        if args.query_command == "status":
            print(json.dumps(_server_request(args.server, "GET", "/v1/stats"), indent=2))
            return 0
        if args.query_command == "stats":
            return _command_query_stats(args)
        if args.query_command == "update":
            return _command_query_update(args)
        if args.query_command == "cancel":
            response = _server_request(
                args.server, "POST", "/v1/cancel", {"session_id": args.session_id}
            )
            print(json.dumps(response))
            return 0 if response.get("cancelled") else 1
        query = _query_document(args)
        solutions, status, trace_block = _run_query(args, query)
    except (RuntimeError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _print_solutions(solutions, status, args.format, trace_block=trace_block)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serve import service_from_args
    from .service.http import ServiceHTTPServer

    try:
        service = service_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    ServiceHTTPServer(
        service,
        host=args.host,
        port=args.port,
        rate_limit=getattr(args, "rate_limit", None),
    ).run()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-mbp`` console script."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "enumerate":
        return _command_enumerate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "serve":
        return _command_serve(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
