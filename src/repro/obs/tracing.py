"""Request-scoped tracing: trace ids and a phase tree of wall times.

A :class:`Trace` is minted at a service entry point (one ``trace_id`` per
request) and records a tree of :class:`Span` phases — for a query:
``parse → load → prep → traverse → serialize``.  Instrumented code never
holds the trace explicitly; it opens phases through the module-level
:func:`span` context manager, which resolves the current thread's active
trace (or does nothing when there is none — the disabled path is one
thread-local read).

The tree crosses the process boundary of the parallel engine by value,
not by reference: the coordinator passes the ``trace_id`` to its workers
through the existing shard-dispatch arguments, each worker records one
span per shard it ran, ships the serialized span dicts back inside its
final ``"done"`` message, and the coordinator grafts them under its own
active span (:meth:`Trace.attach`).  Wall-times therefore attribute
correctly even though the worker clocks never interleave with the
coordinator's.

Spans measure wall time with ``time.perf_counter`` and serialize as::

    {"name": "traverse", "elapsed_ms": 12.3, "children": [...]}

(``children`` omitted when empty; ``meta`` merged in when present).
"""

from __future__ import annotations

import secrets
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


def new_trace_id() -> str:
    """A fresh 16-hex-character request id."""
    return secrets.token_hex(8)


class Span:
    """One timed phase; children are sub-phases or grafted worker spans."""

    __slots__ = ("name", "elapsed_ms", "children", "meta")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed_ms: float = 0.0
        self.children: List[dict] = []
        self.meta: Dict[str, object] = {}

    def to_dict(self) -> dict:
        document: dict = {"name": self.name, "elapsed_ms": round(self.elapsed_ms, 3)}
        if self.meta:
            document.update(self.meta)
        if self.children:
            document["children"] = self.children
        return document


class Trace:
    """The phase tree of one request.

    Not thread-safe by design: a trace belongs to the one thread that
    executes its request (the service's executor threads run a request
    start to finish).  Cross-process contributions arrive as serialized
    dicts via :meth:`attach`, called by the coordinator on that thread.
    """

    def __init__(self, name: str, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.root = Span(name)
        self._stack: List[Span] = [self.root]
        self._started = time.perf_counter()

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        current = Span(name)
        self._stack.append(current)
        started = time.perf_counter()
        try:
            yield current
        finally:
            current.elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._stack.pop()
            self._stack[-1].children.append(current.to_dict())

    def attach(self, span_dict: Optional[dict]) -> None:
        """Graft an already-serialized span tree under the active span."""
        if span_dict:
            self._stack[-1].children.append(span_dict)

    def finish(self) -> None:
        self.root.elapsed_ms = (time.perf_counter() - self._started) * 1000.0

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "root": self.root.to_dict()}


_active = threading.local()


def current_trace() -> Optional[Trace]:
    """The thread's active trace, or ``None`` (tracing off / not requested)."""
    return getattr(_active, "trace", None)


@contextmanager
def trace(
    name: str, trace_id: Optional[str] = None, enabled: bool = True
) -> Iterator[Optional[Trace]]:
    """Activate a request trace for the calling thread's dynamic extent.

    ``enabled=False`` yields ``None`` and touches nothing — the caller
    keeps one code path for traced and untraced requests.  Nesting
    restores the outer trace on exit.
    """
    if not enabled:
        yield None
        return
    active = Trace(name, trace_id)
    previous = current_trace()
    _active.trace = active
    try:
        yield active
    finally:
        active.finish()
        _active.trace = previous


@contextmanager
def span(name: str) -> Iterator[None]:
    """Open a phase on the current trace; a no-op when none is active."""
    active = current_trace()
    if active is None:
        yield
        return
    with active.span(name):
        yield
