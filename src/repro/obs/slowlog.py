"""The slow-query / error log: structured JSON lines, stdlib only.

Two kinds of records share one sink:

* **slow queries** — a request whose wall time reached the threshold
  (``REPRO_SLOW_QUERY_MS``; unset or empty disables slow-query records);
* **errors** — server-side failures (the daemon's 500 path).  These are
  written whenever a sink is configured, threshold or not: the client
  gets a generic message plus the ``trace_id``, and this log is where the
  operator exchanges that id for the traceback.

Each record is one JSON object per line::

    {"kind": "slow_query", "trace_id": "…", "route": "enumerate",
     "elapsed_ms": 1234.5, "ts": 1700000000.0, ...}

The sink is a file path (``REPRO_SLOW_QUERY_LOG``); without one, records
go to ``stderr`` so a foreground daemon still surfaces them.  Writes are
append-with-lock — multiple threads of one process interleave whole
lines, never fragments.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Optional

#: Environment variable: slow-query threshold in milliseconds.
SLOW_QUERY_MS_ENV_VAR = "REPRO_SLOW_QUERY_MS"

#: Environment variable: path of the JSON-lines sink (default stderr).
SLOW_QUERY_LOG_ENV_VAR = "REPRO_SLOW_QUERY_LOG"


class SlowQueryLog:
    """One JSON-lines sink for slow-query and error records."""

    def __init__(
        self,
        threshold_ms: Optional[float] = None,
        path: Optional[str] = None,
    ) -> None:
        self.threshold_ms = threshold_ms
        self.path = path
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls) -> "SlowQueryLog":
        raw = os.environ.get(SLOW_QUERY_MS_ENV_VAR, "").strip()
        threshold: Optional[float] = None
        if raw:
            try:
                threshold = float(raw)
            except ValueError:
                threshold = None  # a bad threshold disables, never crashes
        path = os.environ.get(SLOW_QUERY_LOG_ENV_VAR) or None
        return cls(threshold_ms=threshold, path=path)

    # ------------------------------------------------------------------ #
    def record(
        self, route: str, elapsed_ms: float, trace_id: Optional[str], **fields: object
    ) -> bool:
        """Write a slow-query record when ``elapsed_ms`` meets the threshold.

        Returns whether a record was written — the tests (and callers that
        want to count) read it; production callers ignore it.
        """
        if self.threshold_ms is None or elapsed_ms < self.threshold_ms:
            return False
        self._write(
            {
                "kind": "slow_query",
                "route": route,
                "elapsed_ms": round(elapsed_ms, 3),
                "trace_id": trace_id,
                "ts": time.time(),
                **fields,
            }
        )
        return True

    def error(
        self, route: str, trace_id: Optional[str], traceback_text: str, **fields: object
    ) -> None:
        """Write a server-side error record (always, threshold or not)."""
        self._write(
            {
                "kind": "error",
                "route": route,
                "trace_id": trace_id,
                "traceback": traceback_text,
                "ts": time.time(),
                **fields,
            }
        )

    # ------------------------------------------------------------------ #
    def _write(self, document: dict) -> None:
        line = json.dumps(document, sort_keys=True)
        with self._lock:
            if self.path is None:
                print(line, file=sys.stderr, flush=True)
                return
            try:
                with open(self.path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")
            except OSError:
                # Observability must never take the service down with it.
                print(line, file=sys.stderr, flush=True)
