"""Process-wide metrics: counters, gauges and bounded histograms.

One :class:`MetricsRegistry` instance per process (``get_registry``) is
what every layer publishes into — the HTTP daemon, the query service, the
hot-graph registry, the session table, the parallel coordinator and the
engine (via :func:`repro.obs.publish_run_stats`).  The design constraints,
in order:

* **stdlib only** — no client libraries, no exposition formats beyond
  JSON and a plain-text rendering;
* **cheap when disabled** — every mutator starts with one boolean check
  and returns; a disabled registry never allocates a series;
* **deterministic output** — histograms use *fixed* bucket edges chosen
  at registration (no dynamic rebucketing), and :meth:`snapshot` sorts
  every key, so two runs that perform the same operations produce
  byte-identical snapshots (bucket placement of wall-clock samples aside,
  the schema and series set are identical).

Series are keyed by ``name`` plus sorted ``label=value`` pairs, rendered
as ``name{a=x,b=y}`` — the flat key makes snapshots trivially greppable
and lets the CI smoke job assert exact counter values by string key.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket edges for request latencies, in milliseconds.
#: Fixed (never derived from the data) so snapshot schemas are stable.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def series_key(name: str, labels: Dict[str, object]) -> str:
    """The flat ``name{a=x,b=y}`` series key (labels sorted by name)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class _Histogram:
    __slots__ = ("edges", "counts", "count", "sum")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self.edges = edges
        # One cumulative-style count per edge plus the overflow bucket.
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value

    def to_dict(self) -> dict:
        buckets = {f"le_{edge:g}": count for edge, count in zip(self.edges, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "count": self.count,
            "sum_ms": round(self.sum, 3),
        }


class MetricsRegistry:
    """Thread-safe counters / gauges / fixed-bucket histograms.

    ``enabled=False`` turns every mutator into a single boolean check —
    the zero-cost-ish contract instrumented code relies on.  Readers
    (:meth:`snapshot`, :meth:`render_text`) always work; on a disabled
    registry they see whatever was recorded while it was enabled.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to a monotone counter series."""
        if not self.enabled:
            return
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series to its current value."""
        if not self.enabled:
            return
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into a histogram series.

        The bucket edges are fixed at the series' first observation
        (``buckets`` defaults to :data:`DEFAULT_LATENCY_BUCKETS_MS`);
        later ``buckets`` arguments are ignored — edges never move.
        """
        if not self.enabled:
            return
        key = series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                edges = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS
                histogram = self._histograms[key] = _Histogram(edges)
            histogram.observe(value)

    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: object) -> int:
        """Current value of one counter series (0 when never incremented)."""
        with self._lock:
            return self._counters.get(series_key(name, labels), 0)

    def snapshot(self) -> dict:
        """One JSON-ready document of every series, keys sorted."""
        with self._lock:
            return {
                "counters": {key: self._counters[key] for key in sorted(self._counters)},
                "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
                "histograms": {
                    key: self._histograms[key].to_dict()
                    for key in sorted(self._histograms)
                },
            }

    def render_text(self) -> str:
        """Plain-text rendering of :meth:`snapshot` (one series per line)."""
        return render_snapshot_text(self.snapshot())

    def reset(self) -> None:
        """Drop every series (tests and long-lived daemons' admin use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def render_snapshot_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` document as plain text.

    Module-level (not a method) so the CLI can re-render a snapshot it
    fetched from a daemon's ``/v1/metrics`` endpoint without holding a
    registry.
    """
    lines: List[str] = []
    for key, value in snapshot.get("counters", {}).items():
        lines.append(f"counter {key} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        lines.append(f"gauge {key} {value:g}")
    for key, data in snapshot.get("histograms", {}).items():
        lines.append(
            f"histogram {key} count={data['count']} sum_ms={data['sum_ms']:g}"
        )
        for bucket, count in data["buckets"].items():
            lines.append(f"histogram {key}{{{bucket}}} {count}")
    return "\n".join(lines) + ("\n" if lines else "")
