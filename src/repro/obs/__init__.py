"""``repro.obs`` — the request-scoped observability layer.

Three stdlib-only pieces (see ``ARCHITECTURE.md`` for the contracts):

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms; deterministic snapshots)
  every layer publishes into and ``/v1/metrics`` serves;
* :mod:`repro.obs.tracing` — per-request ``trace_id`` plus a
  :class:`Trace` phase tree (``parse → load → prep → traverse →
  serialize``) recorded through the :func:`span` context manager and
  propagated into parallel workers by value;
* :mod:`repro.obs.slowlog` — the :class:`SlowQueryLog` JSON-lines sink
  for slow-query and server-error records.

The whole layer rides one switch: ``REPRO_OBS=off`` disables the global
registry (every publish site then costs a single boolean check) and
suppresses request traces.  Tracing is additionally opt-in per request
(``"trace": true`` in a query document, ``--trace`` on the CLI) — a
disabled layer never emits trace blocks even when asked.
"""

from __future__ import annotations

import os
from typing import Optional

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    render_snapshot_text,
    series_key,
)
from .slowlog import (
    SLOW_QUERY_LOG_ENV_VAR,
    SLOW_QUERY_MS_ENV_VAR,
    SlowQueryLog,
)
from .tracing import Span, Trace, current_trace, new_trace_id, span, trace

#: Environment variable switching the whole layer: ``off``/``0``/``false``
#: disables the global registry and request traces; anything else (or
#: unset) leaves observability on.
OBS_ENV_VAR = "REPRO_OBS"

_OFF_VALUES = {"0", "off", "false", "no"}


def obs_enabled_default() -> bool:
    """Whether ``REPRO_OBS`` leaves the layer enabled (the default)."""
    return os.environ.get(OBS_ENV_VAR, "").strip().lower() not in _OFF_VALUES


_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use, env-gated)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry(enabled=obs_enabled_default())
    return _registry


def reset_registry() -> MetricsRegistry:
    """Replace the global registry with a fresh env-gated one (tests)."""
    global _registry
    _registry = MetricsRegistry(enabled=obs_enabled_default())
    return _registry


#: The engine's per-prune-site counters (``TraversalStats`` fields) as
#: published into the registry: one ``engine_pruned_total{site=…}`` series
#: per prune site.  Listed here — not introspected — so the metric names
#: are a stable contract independent of dataclass field order.
PRUNE_SITE_FIELDS = (
    ("size_filter", "num_pruned_size_filter"),
    ("subtree", "num_pruned_subtree"),
    ("anchor", "num_pruned_anchor"),
    ("exclusion", "num_pruned_exclusion"),
    ("core_bound", "num_pruned_core_bound"),
    ("right_extensible", "num_pruned_right_extensible"),
)


def publish_run_stats(stats, registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one finished traversal's counters into the metrics registry.

    Called by the session layer when a run's stream closes (stats are
    final by then), for every front end — library ``run()``, CLI,
    service.  One early boolean check keeps the disabled path free.
    """
    target = registry if registry is not None else get_registry()
    if not target.enabled:
        return
    target.inc("engine_runs_total")
    target.inc("engine_solutions_total", value=stats.num_reported)
    target.inc("engine_links_total", value=stats.num_links)
    target.inc("engine_almost_sat_graphs_total", value=stats.num_almost_sat_graphs)
    target.inc("engine_pruned_by_bound_total", value=stats.num_pruned_by_bound)
    if stats.truncated:
        target.inc("engine_truncated_runs_total")
    for site, field_name in PRUNE_SITE_FIELDS:
        value = getattr(stats, field_name, 0)
        if value:
            target.inc("engine_pruned_total", value=value, site=site)
    target.observe(
        "engine_run_ms", stats.elapsed_seconds * 1000.0, route="engine"
    )


__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "OBS_ENV_VAR",
    "PRUNE_SITE_FIELDS",
    "SLOW_QUERY_LOG_ENV_VAR",
    "SLOW_QUERY_MS_ENV_VAR",
    "SlowQueryLog",
    "Span",
    "Trace",
    "current_trace",
    "get_registry",
    "new_trace_id",
    "obs_enabled_default",
    "publish_run_stats",
    "render_snapshot_text",
    "reset_registry",
    "series_key",
    "span",
    "trace",
]
