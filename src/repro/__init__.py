"""repro — a reproduction of "Efficient Algorithms for Maximal k-Biplex Enumeration" (SIGMOD 2022).

The package enumerates all maximal k-biplexes (MBPs) of a bipartite graph
with the paper's iTraversal reverse-search algorithm, and ships every
baseline, dataset generator and experiment harness needed to regenerate the
paper's tables and figures at laptop scale.

Quickstart
----------
>>> from repro import BipartiteGraph, enumerate_mbps
>>> graph = BipartiteGraph(2, 2, edges=[(0, 0), (0, 1), (1, 0)])
>>> solutions, stats = enumerate_mbps(graph, k=1)
>>> stats.num_reported == len(solutions)
True
"""

from .core import (
    Biplex,
    BTraversal,
    CursorError,
    EnumerationSession,
    ITraversal,
    LargeMBPEnumerator,
    TraversalConfig,
    TraversalStats,
    enumerate_large_mbps,
    enumerate_mbps,
    enumerate_mbps_btraversal,
    is_k_biplex,
    is_maximal_k_biplex,
)
from .graph import (
    BipartiteGraph,
    BitsetBipartiteGraph,
    Side,
    erdos_renyi_bipartite,
    paper_example_graph,
    planted_biplex_graph,
    read_edge_list,
    review_graph_with_camouflage,
    write_edge_list,
)
from .parallel import JOBS_ENV_VAR, resolve_jobs

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Biplex",
    "BipartiteGraph",
    "BitsetBipartiteGraph",
    "Side",
    "ITraversal",
    "BTraversal",
    "CursorError",
    "EnumerationSession",
    "LargeMBPEnumerator",
    "TraversalConfig",
    "TraversalStats",
    "enumerate_mbps",
    "enumerate_large_mbps",
    "enumerate_mbps_btraversal",
    "is_k_biplex",
    "is_maximal_k_biplex",
    "paper_example_graph",
    "erdos_renyi_bipartite",
    "planted_biplex_graph",
    "review_graph_with_camouflage",
    "read_edge_list",
    "write_edge_list",
    "JOBS_ENV_VAR",
    "resolve_jobs",
]
